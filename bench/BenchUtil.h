//===- bench/BenchUtil.h - Shared harness helpers ---------------*- C++ -*-==//
//
// Part of the alive2re project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Helpers shared by the per-figure benchmark binaries: running a TestPair
/// through the validator and tallying verdicts into the paper's buckets.
///
//===----------------------------------------------------------------------===//

#ifndef ALIVE2RE_BENCH_BENCHUTIL_H
#define ALIVE2RE_BENCH_BENCHUTIL_H

#include "corpus/Corpus.h"
#include "ir/Parser.h"
#include "refine/Validator.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <cstdio>

namespace alive::bench {

inline refine::Verdict runPair(const corpus::TestPair &P,
                               const refine::Options &Opts) {
  smt::resetContext();
  auto SrcM = ir::parseModuleOrDie(P.SrcIR);
  auto TgtM = ir::parseModuleOrDie(P.TgtIR);
  const ir::Function *SF = SrcM->function(SrcM->numFunctions() - 1);
  const ir::Function *TF = TgtM->functionByName(SF->name());
  // Benchmarks measure solver effort; the result cache is its own
  // benchmark (bench_cache) and stays out of everyone else's numbers.
  refine::Options O = Opts;
  O.Cache = refine::CachePolicy::disabled();
  return refine::Validator(O).verifyPair(*SF, *TF, SrcM.get());
}

/// Sum of the named distribution in a registry snapshot; 0 when absent.
/// Benchmarks report "time.verify" sums instead of wrapping their own
/// stopwatches around the sweep loop.
inline double distSum(const stats::Snapshot &S, const std::string &Name) {
  return S.dist(Name).Sum;
}

/// Writes a registry snapshot as a JSON document (counters as integers,
/// distributions as {count,sum,min,max} objects). \returns false when the
/// file cannot be opened.
inline bool writeStatsJson(const char *Path, const stats::Snapshot &S,
                           const std::string &Note = "") {
  std::FILE *F = std::fopen(Path, "w");
  if (!F)
    return false;
  std::fprintf(F, "{\n  \"note\": \"%s\",\n  \"counters\": {",
               trace::jsonEscape(Note).c_str());
  bool First = true;
  for (const auto &[Name, V] : S.Counters) {
    std::fprintf(F, "%s\n    \"%s\": %llu", First ? "" : ",",
                 trace::jsonEscape(Name).c_str(), (unsigned long long)V);
    First = false;
  }
  std::fprintf(F, "\n  },\n  \"distributions\": {");
  First = true;
  for (const auto &[Name, D] : S.Dists) {
    std::fprintf(F,
                 "%s\n    \"%s\": {\"count\": %llu, \"sum\": %.9g, "
                 "\"min\": %.9g, \"max\": %.9g}",
                 First ? "" : ",", trace::jsonEscape(Name).c_str(),
                 (unsigned long long)D.Count, D.Sum, D.Min, D.Max);
    First = false;
  }
  std::fprintf(F, "\n  }\n}\n");
  std::fclose(F);
  return true;
}

} // namespace alive::bench

#endif // ALIVE2RE_BENCH_BENCHUTIL_H
