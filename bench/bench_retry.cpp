//===- bench/bench_retry.cpp - Budget-escalation ladder sweep ----------------==//
//
// Part of the alive2re project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The resource-governance headline number: a corpus of easy pairs salted
/// with hopeless ones (i64 multiplier associativity — far beyond any
/// bit-blasting budget) verified two ways:
///
///   flat    one attempt with a generous 8s budget per pair (the "don't
///           know what a pair needs, give everyone the max" policy), so
///           every hopeless pair burns the whole 8s;
///   ladder  base budget 0.25s escalating x4 per rung for up to 2 retries
///           (0.25s / 1s / 4s), so a hopeless pair costs the geometric sum
///           (5.25s, ~2/3 of flat) while easy pairs finish on rung 0.
///
/// The contract: identical Correct/Incorrect/Timeout tallies in both rows —
/// the ladder may only move time around — with a lower wall clock for the
/// ladder whenever the corpus has hopeless pairs.
///
/// Emits BENCH_retry.json (registry snapshot: retry.* counters plus
/// bench.retry.*_wall distributions).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace alive;
using namespace alive::bench;

// A refinement check whose step-1 query hides a 64-bit multiplier
// associativity proof: sound (the pairs are genuinely equivalent) but far
// outside any realistic CDCL budget, so every budget rung times out.
static const char *HardSrc = R"(
define i64 @mul_assoc(i64 %a, i64 %b, i64 %c) {
entry:
  %ab = mul i64 %a, %b
  %r = mul i64 %ab, %c
  ret i64 %r
}
)";
static const char *HardTgt = R"(
define i64 @mul_assoc(i64 %a, i64 %b, i64 %c) {
entry:
  %bc = mul i64 %b, %c
  %r = mul i64 %a, %bc
  ret i64 %r
}
)";

int main() {
  std::vector<corpus::TestPair> Suite = corpus::unitTestSuite();
  const unsigned HardPairs = 2;
  for (unsigned I = 0; I < HardPairs; ++I)
    Suite.push_back({"hard-mul-assoc-" + std::to_string(I), "hard", HardSrc,
                     HardTgt});

  std::vector<std::unique_ptr<ir::Module>> Keep;
  std::vector<refine::Validator::PairTask> Tasks;
  for (const auto &P : Suite) {
    auto SrcM = ir::parseModuleOrDie(P.SrcIR);
    auto TgtM = ir::parseModuleOrDie(P.TgtIR);
    const ir::Function *SF = SrcM->function(SrcM->numFunctions() - 1);
    const ir::Function *TF = TgtM->functionByName(SF->name());
    Tasks.push_back({SF, TF, SrcM.get(), P.Name});
    Keep.push_back(std::move(SrcM));
    Keep.push_back(std::move(TgtM));
  }

  const double FlatTimeout = 8.0;
  refine::Options Base;
  Base.Cache = refine::CachePolicy::disabled();

  std::printf("# Budget-escalation ladder vs flat budget (corpus: %zu pairs, "
              "%u hopeless; flat %.2gs)\n",
              Tasks.size(), HardPairs, FlatTimeout);
  std::printf("%-10s %-9s %-9s %-7s %-9s %-9s %-9s %-10s\n", "row",
              "wall(s)", "correct", "viol", "timeout", "retried",
              "queries", "speedup");
  stats::Registry::get().reset();

  refine::BatchSummary Ref;
  double FlatWall = 0;
  auto row = [&](const char *Name, const char *Sample,
                 const refine::Options &Opts) {
    refine::Validator V(Opts);
    Stopwatch Timer;
    auto Results = V.verifyBatch(Tasks, /*Jobs=*/1);
    double Wall = Timer.seconds();
    stats::addSample(Sample, Wall);
    refine::BatchSummary S = refine::summarize(Results);
    if (Ref.Pairs == 0) {
      Ref = S;
      FlatWall = Wall;
    }
    bool Parity = S.Correct == Ref.Correct && S.Incorrect == Ref.Incorrect &&
                  S.Timeout == Ref.Timeout;
    std::printf("%-10s %-9.2f %-9u %-7u %-9u %-9u %-9u %-10.2f%s\n", Name,
                Wall, S.Correct, S.Incorrect, S.Timeout, S.Retried,
                S.QueriesRun, Wall > 0 ? FlatWall / Wall : 0.0,
                Parity ? "" : "  ** VERDICT MISMATCH vs flat **");
    return S;
  };

  {
    refine::Options Opts = Base;
    Opts.Budget.TimeoutSec = FlatTimeout;
    row("flat", "bench.retry.flat_wall", Opts);
  }
  {
    refine::Options Opts = Base;
    // Rungs 0.25s / 1s / 4s: the ladder tops out below the flat budget.
    // Parity is structural as long as no pair is solvable only in the
    // (4s, 8s] window — the corpus is easy pairs plus hopeless ones.
    Opts.Budget.TimeoutSec = 0.25;
    Opts.Retry.MaxRungs = 2;
    Opts.Retry.Multiplier = 4.0;
    row("ladder", "bench.retry.ladder_wall", Opts);
  }

  const char *Out = "BENCH_retry.json";
  if (writeStatsJson(Out, stats::Registry::get().snapshot(),
                     "flat vs escalating budgets; bench.retry.*_wall carry "
                     "the row wall times"))
    std::printf("\nwrote %s\n", Out);
  std::printf("\n(ladder contract: identical verdict tallies; hopeless pairs "
              "cost the geometric sum of the rung budgets instead of the "
              "full flat budget)\n");
  return 0;
}
