//===- bench/bench_ablation_encoding.cpp - E8 ablation -------------------------==//
//
// Part of the alive2re project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Ablation E8: the Section 3.7-style quantifier-instantiation machinery
/// (symbolic seeds + equation-derived definitions) on vs off. Without it
/// the exists-forall engine degenerates to pointwise CEGIS and queries over
/// undef-heavy code stall in "quantifier limit" — quantifying how much the
/// paper's encoding optimizations matter.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace alive;
using namespace alive::bench;

int main() {
  // Undef-heavy correct pairs: the worst case for naive CEGIS.
  std::vector<corpus::TestPair> Suite;
  for (const auto &P : corpus::unitTestSuite())
    if (P.NeedsUnroll == 0)
      Suite.push_back(P);

  std::printf("# Ablation E8: quantifier-instantiation seeds (Section 3.7 "
              "analog), %zu pairs\n",
              Suite.size());
  std::printf("%-10s %-10s %-12s %-14s %-8s\n", "seeds", "correct",
              "incorrect", "inconclusive", "time(s)");
  for (bool Seeds : {true, false}) {
    refine::Options Opts;
    Opts.UnrollFactor = 4;
    Opts.Budget.TimeoutSec = 5;
    Opts.UseInstantiationSeeds = Seeds;
    refine::BatchSummary T;
    Stopwatch Timer;
    for (const auto &P : Suite)
      T.countVerdict(runPair(P, Opts));
    std::printf("%-10s %-10u %-12u %-14u %-8.1f\n", Seeds ? "on" : "off",
                T.Correct, T.Incorrect, T.Pairs - T.Correct - T.Incorrect,
                Timer.seconds());
  }
  std::printf("\n(expected: disabling the instantiation machinery turns "
              "verified pairs into quantifier-limit timeouts and inflates "
              "runtime)\n");
  return 0;
}
