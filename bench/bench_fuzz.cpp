//===- bench/bench_fuzz.cpp - Fuzzing-engine throughput sweep ----------------==//
//
// Part of the alive2re project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Throughput of the differential-fuzzing loop: how many mutate -> derive
/// -> oracle cycles per second the stack sustains on generated seeds, how
/// the per-run cost splits between mutation and verification, and how long
/// the reducer takes to shrink the canonical bug-select-arith repro. The
/// numbers bound what `tool.alive-fuzz-long` can afford per CI tier.
///
/// Emits BENCH_fuzz.json (fuzz.* counters plus bench.fuzz.*_wall
/// distributions).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "fuzz/Mutator.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reducer.h"
#include "support/Profile.h"

#include <chrono>

using namespace alive;
using namespace alive::bench;

namespace {

double now() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

} // namespace

int main() {
  constexpr unsigned Runs = 24;
  constexpr uint64_t Seed = 0xf022;

  fuzz::Oracle::Config C;
  C.Opts.Budget.TimeoutSec = 10;
  fuzz::Oracle Oracle(C);

  std::printf("# Differential fuzzing throughput (%u runs, seed 0x%llx, "
              "correct pipeline)\n",
              Runs, (unsigned long long)Seed);
  std::printf("%-8s %-9s %-10s %-10s %-9s\n", "run", "mutate(s)", "oracle(s)",
              "mutations", "failures");

  stats::Registry::get().reset();
  Rng Master(Seed);
  double MutateTotal = 0, OracleTotal = 0;
  unsigned Failures = 0;
  for (unsigned Run = 0; Run < Runs; ++Run) {
    uint64_t RunSeed = Master.next();
    std::string Base =
        corpus::generateFunctionIR(RunSeed, Run % 3 == 1, Run % 4 == 2);
    fuzz::Mutator Mut(RunSeed);
    double T0 = now();
    std::string Mutant = Mut.mutate(Base, 3);
    double T1 = now();
    auto Fails = Oracle.run(Mutant);
    double T2 = now();
    MutateTotal += T1 - T0;
    OracleTotal += T2 - T1;
    Failures += (unsigned)Fails.size();
    stats::addSample("bench.fuzz.mutate_wall", T1 - T0);
    stats::addSample("bench.fuzz.oracle_wall", T2 - T1);
    std::printf("%-8u %-9.4f %-10.3f %-10zu %-9zu\n", Run, T1 - T0, T2 - T1,
                Mut.log().size(), Fails.size());
  }
  std::printf("\n%u runs in %.2fs oracle wall (%.2f runs/s), %u failures, "
              "mutation overhead %.1f%%\n",
              Runs, OracleTotal, Runs / (OracleTotal > 0 ? OracleTotal : 1),
              Failures, 100.0 * MutateTotal / (MutateTotal + OracleTotal));

  // Reducer on the canonical Section 8.4 trigger through the buggy pass.
  const char *BuggySrc = "define i1 @f(i1 %x, i1 %y, i8 %a) {\n"
                         "entry:\n"
                         "  %pad1 = add i8 %a, 1\n"
                         "  %pad2 = mul i8 %pad1, 3\n"
                         "  %r = select i1 %x, i1 %y, i1 false\n"
                         "  ret i1 %r\n"
                         "}\n";
  fuzz::Oracle::Config BC;
  BC.Pipeline = {"bug-select-arith"};
  BC.Opts.Budget.TimeoutSec = 10;
  fuzz::Oracle BuggyOracle(BC);
  fuzz::Reducer Reducer(BuggyOracle);
  double R0 = now();
  fuzz::ReduceResult R = Reducer.reduce("pipeline-soundness", BuggySrc);
  double R1 = now();
  stats::addSample("bench.fuzz.reduce_wall", R1 - R0);
  std::printf("reduce: %zu -> %zu instrs in %.2fs (%u candidates, %u "
              "accepted)\n",
              R.InitialInstrs, R.FinalInstrs, R1 - R0, R.CandidatesTried,
              R.Accepted);

  auto Snap = stats::Registry::get().snapshot();
  if (!writeStatsJson("BENCH_fuzz.json", Snap,
                      "differential fuzzing throughput sweep"))
    std::fprintf(stderr, "warning: cannot write BENCH_fuzz.json\n");
  return Failures ? 1 : 0;
}
