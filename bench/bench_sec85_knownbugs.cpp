//===- bench/bench_sec85_knownbugs.cpp - Section 8.5 study ---------------------==//
//
// Part of the alive2re project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Section 8.5: 36 publicly-reported miscompilations; the paper detects 29
/// and misses 7 (one infinite loop, one over-large trip count, five
/// escaped-locals cases). This reproduction encodes the same blind spots,
/// so the detected/missed split — and the *reasons* for the misses — should
/// match.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace alive;
using namespace alive::bench;

int main() {
  refine::Options Opts;
  Opts.UnrollFactor = 8;
  Opts.Budget.TimeoutSec = 15;

  unsigned Detected = 0, Missed = 0, Surprises = 0;
  std::printf("# Section 8.5: reproducing known LLVM bugs (unroll 8)\n");
  std::printf("%-24s %-16s %-10s %-10s\n", "bug", "category", "verdict",
              "expected");
  for (const corpus::KnownBug &B : corpus::knownBugSuite()) {
    refine::Verdict V = runPair(B.Pair, Opts);
    bool Caught = V.isIncorrect();
    Caught ? ++Detected : ++Missed;
    bool AsExpected = Caught == B.ExpectDetected;
    if (!AsExpected)
      ++Surprises;
    std::printf("%-24s %-16s %-10s %-10s %s\n", B.Pair.Name.c_str(),
                B.Pair.Category.c_str(), Caught ? "detected" : "missed",
                B.ExpectDetected ? "detected" : "missed",
                AsExpected ? "" : "  <-- SURPRISE");
    if (!Caught && !B.MissReason.empty())
      std::printf("%26s reason: %s\n", "", B.MissReason.c_str());
  }
  std::printf("\n%u detected / %u missed of %zu   (paper: 29 / 7 of 36)\n",
              Detected, Missed, corpus::knownBugSuite().size());
  std::printf("unexpected outcomes: %u\n", Surprises);
  return Surprises ? 1 : 0;
}
