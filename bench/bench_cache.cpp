//===- bench/bench_cache.cpp - Query/verdict cache sweep -----------------------==//
//
// Part of the alive2re project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Cold-vs-warm sweep for the two-level result cache: the corpus is pushed
/// through one Validator against a fresh on-disk store (cold), replayed
/// through the same Validator (warm, in-memory pair hits), and replayed
/// again through a brand-new Validator that only has the store file (warm,
/// disk). An uncached baseline anchors the comparison. Verdict tallies
/// must be identical in every row — the cache may only move time around.
///
/// Emits BENCH_cache.json (registry snapshot: cache.* counters plus
/// bench.cache.*_wall distributions).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <filesystem>

using namespace alive;
using namespace alive::bench;

int main() {
  std::vector<corpus::TestPair> Suite = corpus::unitTestSuite();
  auto Gen = corpus::generatedSuite(12, 0xcac4e);
  Suite.insert(Suite.end(), Gen.begin(), Gen.end());

  // Parse every pair up front and keep the modules alive: all four rows
  // must verify the exact same tasks.
  std::vector<std::unique_ptr<ir::Module>> Keep;
  std::vector<refine::Validator::PairTask> Tasks;
  for (const auto &P : Suite) {
    auto SrcM = ir::parseModuleOrDie(P.SrcIR);
    auto TgtM = ir::parseModuleOrDie(P.TgtIR);
    const ir::Function *SF = SrcM->function(SrcM->numFunctions() - 1);
    const ir::Function *TF = TgtM->functionByName(SF->name());
    Tasks.push_back({SF, TF, SrcM.get(), P.Name});
    Keep.push_back(std::move(SrcM));
    Keep.push_back(std::move(TgtM));
  }

  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "alive2re-bench-cache";
  fs::remove_all(Dir);
  fs::create_directories(Dir);

  refine::Options Base;
  Base.UnrollFactor = 8;
  Base.Budget.TimeoutSec = 10;

  std::printf("# Query/verdict cache: cold vs warm (corpus: %zu pairs, "
              "unroll 8, timeout 10s)\n",
              Tasks.size());
  std::printf("%-16s %-9s %-7s %-7s %-9s %-10s %-10s\n", "row", "wall(s)",
              "valid", "viol", "cachehit", "queries", "speedup");
  stats::Registry::get().reset();

  refine::BatchSummary Ref;
  double ColdWall = 0;
  auto row = [&](const char *Name, const char *Sample,
                 refine::Validator &V) {
    Stopwatch Timer;
    auto Results = V.verifyBatch(Tasks, /*Jobs=*/1);
    double Wall = Timer.seconds();
    stats::addSample(Sample, Wall);
    refine::BatchSummary S = refine::summarize(Results);
    if (Ref.Pairs == 0) {
      Ref = S;
      ColdWall = Wall;
    }
    bool Parity = S.Correct == Ref.Correct && S.Incorrect == Ref.Incorrect &&
                  S.Unsupported == Ref.Unsupported;
    std::printf("%-16s %-9.2f %-7u %-7u %-9u %-10u %-10.2f%s\n", Name, Wall,
                S.Correct, S.Incorrect, S.CacheHits, S.QueriesRun,
                Wall > 0 ? ColdWall / Wall : 0.0,
                Parity ? "" : "  ** VERDICT MISMATCH vs cold **");
    return S;
  };

  {
    refine::Options Opts = Base;
    Opts.Cache = refine::CachePolicy::disabled();
    refine::Validator V(Opts);
    Stopwatch Timer;
    auto Results = V.verifyBatch(Tasks, /*Jobs=*/1);
    double Wall = Timer.seconds();
    stats::addSample("bench.cache.uncached_wall", Wall);
    refine::BatchSummary S = refine::summarize(Results);
    std::printf("%-16s %-9.2f %-7u %-7u %-9u %-10u %-10s\n", "uncached",
                Wall, S.Correct, S.Incorrect, S.CacheHits, S.QueriesRun,
                "-");
  }

  refine::Options Opts = Base;
  Opts.Cache.Dir = Dir.string();
  {
    refine::Validator V(Opts);
    row("cold", "bench.cache.cold_wall", V);
    refine::BatchSummary Warm =
        row("warm-memory", "bench.cache.warm_memory_wall", V);
    if (Warm.CacheHits != Warm.Pairs)
      std::printf("** expected every warm-memory pair cached, got %u/%u\n",
                  Warm.CacheHits, Warm.Pairs);
    std::string Err;
    if (!V.flushCache(&Err))
      std::printf("** cache flush failed: %s\n", Err.c_str());
  }
  {
    // Fresh Validator, fresh process stand-in: only the store file is warm.
    refine::Validator V(Opts);
    refine::BatchSummary Disk =
        row("warm-disk", "bench.cache.warm_disk_wall", V);
    if (Disk.CacheHits != Disk.Pairs)
      std::printf("** expected every warm-disk pair cached, got %u/%u\n",
                  Disk.CacheHits, Disk.Pairs);
  }

  const char *Out = "BENCH_cache.json";
  if (writeStatsJson(Out, stats::Registry::get().snapshot(),
                     "cache cold/warm sweep; bench.cache.*_wall carry the "
                     "row wall times"))
    std::printf("\nwrote %s\n", Out);
  fs::remove_all(Dir);
  std::printf("\n(cache contract: identical verdict tallies in every row; "
              "warm rows buy back the solver time)\n");
  return 0;
}
