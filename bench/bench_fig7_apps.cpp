//===- bench/bench_fig7_apps.cpp - Figure 7 reproduction -----------------------==//
//
// Part of the alive2re project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Figure 7: translation validation while "compiling" the five single-file
/// applications. Each app is a generated module (scaled; see DESIGN.md)
/// pushed through the -O2 pipeline with per-pass validation. A saboteur
/// pass models the real select->and/or miscompilation the paper found in
/// the wild, so the Violations column is non-zero just as in the paper.
///
/// Columns mirror the paper: Pairs (function x pass), Diff (pairs where the
/// pass changed the function => validated), Time, Valid, Violations, TO,
/// OOM, Unsupported.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "opt/Pass.h"

using namespace alive;
using namespace alive::bench;

int main() {
  std::printf("# Figure 7: single-file application runs (scaled; the "
              "paper's LoC in col 2)\n");
  std::printf("%-9s %-5s %-7s %-6s %-9s %-6s %-8s %-4s %-4s %-7s\n", "Prog",
              "KLoC", "Pairs", "Diff", "Time(s)", "Valid", "Viol", "TO",
              "OOM", "Unsup");

  for (const corpus::AppSpec &Spec : corpus::appSpecs()) {
    auto M = corpus::generateApp(Spec);
    refine::Options Opts;
    Opts.UnrollFactor = 8;
    Opts.Budget.TimeoutSec = 10;

    unsigned Pairs = 0, Diff = 0;
    refine::BatchSummary T;
    Stopwatch Timer;
    ir::Module *MPtr = M.get();
    refine::Validator Validator(Opts);
    opt::TVHook Hook = [&](const ir::Function &Before,
                           const ir::Function &After,
                           const std::string &) {
      ++Diff;
      smt::resetContext();
      T.countVerdict(Validator.verifyPair(Before, After, MPtr));
    };
    // The honest -O2 pipeline plus the in-the-wild select miscompilation
    // (first, before instcombine canonicalizes its trigger pattern away).
    std::vector<std::string> Pipeline = opt::defaultPipeline();
    Pipeline.insert(Pipeline.begin(), "bug-select-arith");
    Pairs = Spec.Functions * (unsigned)Pipeline.size();
    opt::runPipeline(*M, Pipeline, Hook, /*Batch=*/false);

    std::printf("%-9s %-5u %-7u %-6u %-9.1f %-6u %-8u %-4u %-4u %-7u\n",
                Spec.Name.c_str(), Spec.KLoc, Pairs, Diff, Timer.seconds(),
                T.Correct, T.Incorrect, T.Timeout, T.OutOfMemory,
                T.Unsupported + T.Other);
  }
  std::printf("\n(paper shape: most pairs validate; a small violation "
              "count dominated by the select->and/or bug; nonzero "
              "TO/OOM/unsupported buckets at scale)\n");
  return 0;
}
