//===- bench/bench_ablation_equivalence.cpp - E7 ablation ----------------------==//
//
// Part of the alive2re project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Ablation E7 (the paper's central design argument): a translation
/// validator without deferred-UB support raises false alarms on the
/// UB-exploiting transformations compilers perform constantly. We validate
/// the corpus's *correct* pairs twice — refinement mode vs the
/// equivalence baseline — and count the alarms each raises.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace alive;
using namespace alive::bench;

int main() {
  std::vector<corpus::TestPair> Correct;
  for (const auto &P : corpus::unitTestSuite())
    if (!P.ExpectBug && P.NeedsUnroll == 0)
      Correct.push_back(P);

  std::printf("# Ablation E7: refinement vs UB-blind equivalence "
              "(%zu correct pairs)\n",
              Correct.size());
  std::printf("%-14s %-14s %-14s\n", "mode", "accepted", "false-alarms");
  for (bool Equivalence : {false, true}) {
    refine::Options Opts;
    Opts.UnrollFactor = 4;
    Opts.Budget.TimeoutSec = 15;
    Opts.EquivalenceMode = Equivalence;
    unsigned Accepted = 0, Alarms = 0, Other = 0;
    std::vector<std::string> AlarmNames;
    for (const auto &P : Correct) {
      refine::Verdict V = runPair(P, Opts);
      if (V.isCorrect())
        ++Accepted;
      else if (V.isIncorrect()) {
        ++Alarms;
        AlarmNames.push_back(P.Name);
      } else
        ++Other;
    }
    std::printf("%-14s %-14u %-14u\n",
                Equivalence ? "equivalence" : "refinement", Accepted, Alarms);
    for (const std::string &N : AlarmNames)
      std::printf("    false alarm: %s\n", N.c_str());
  }
  std::printf("\n(the refinement row must show zero false alarms; the "
              "equivalence row flags the UB-exploiting rewrites, matching "
              "the paper's argument that UB support is mandatory)\n");
  return 0;
}
