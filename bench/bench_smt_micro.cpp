//===- bench/bench_smt_micro.cpp - SMT substrate microbenchmarks ---------------==//
//
// Part of the alive2re project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// google-benchmark microbenchmarks of the SMT substrate that replaces Z3:
/// expression construction/folding, bit-blasting + SAT at several widths,
/// the staged-vs-monolithic query comparison (the Section 5.3 design
/// choice), and the exists-forall engine.
///
//===----------------------------------------------------------------------===//

#include "smt/ExistsForall.h"
#include "support/Profile.h"

#include <benchmark/benchmark.h>

using namespace alive;
using namespace alive::smt;

static void BM_ExprConstructionFolding(benchmark::State &State) {
  for (auto _ : State) {
    resetContext();
    Expr X = mkVar("x", 32);
    Expr E = X;
    for (int I = 0; I < 200; ++I)
      E = mkAdd(mkBVXor(E, mkBV(32, (uint64_t)I)), X);
    benchmark::DoNotOptimize(E.id());
  }
}
BENCHMARK(BM_ExprConstructionFolding);

static void BM_BitblastSolveAdd(benchmark::State &State) {
  unsigned W = (unsigned)State.range(0);
  for (auto _ : State) {
    resetContext();
    Expr X = mkVar("x", W), Y = mkVar("y", W), Z = mkVar("z", W);
    // Associativity is invisible to the construction-time folder, so this
    // exercises two genuine ripple-carry adders plus the comparator.
    Expr Q = mkNe(mkAdd(mkAdd(X, Y), Z), mkAdd(X, mkAdd(Y, Z)));
    SolveOutcome R = checkSat(Q);
    if (!R.isUnsat())
      State.SkipWithError("expected unsat");
  }
}
BENCHMARK(BM_BitblastSolveAdd)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

static void BM_BitblastSolveMulFactor(benchmark::State &State) {
  unsigned W = (unsigned)State.range(0);
  for (auto _ : State) {
    resetContext();
    Expr X = mkVar("x", W), Y = mkVar("y", W);
    Expr Q = mkAnd(
        mkEq(mkMul(X, Y), mkBV(W, 143)),
        mkAnd(mkUgt(X, mkBV(W, 1)), mkUgt(Y, mkBV(W, 1))));
    SolveOutcome R = checkSat(Q);
    if (!R.isSat())
      State.SkipWithError("expected sat");
  }
}
BENCHMARK(BM_BitblastSolveMulFactor)->Arg(8)->Arg(12)->Arg(16);

static void BM_ExistsForallMax(benchmark::State &State) {
  unsigned W = (unsigned)State.range(0);
  for (auto _ : State) {
    resetContext();
    Expr X = mkVar("x", W), Y = mkVar("y", W);
    EFQuery Q;
    Q.Inner = mkUgt(Y, X);
    Q.InnerVars = {Y.id()};
    EFOutcome R = solveExistsForall(Q, SolverBudget());
    if (R.Res != SatResult::Sat)
      State.SkipWithError("expected sat");
  }
}
BENCHMARK(BM_ExistsForallMax)->Arg(8)->Arg(16);

/// The Section 5.3 design choice: a sequence of small targeted queries vs
/// one monolithic conjunction. The paper stages mainly for error
/// attribution; this pair quantifies the runtime cost/benefit of staging
/// on this engine.
static Expr hardConjunct(unsigned W, unsigned I) {
  Expr X = mkVar("x" + std::to_string(I), W);
  Expr Y = mkVar("y" + std::to_string(I), W);
  return mkEq(mkMul(X, Y), mkAdd(mkMul(Y, X), mkBV(W, 0)));
}

static void BM_StagedQueries(benchmark::State &State) {
  for (auto _ : State) {
    resetContext();
    bool AllSat = true;
    for (unsigned I = 0; I < 6; ++I)
      AllSat &= checkSat(hardConjunct(16, I)).isSat();
    benchmark::DoNotOptimize(AllSat);
  }
}
BENCHMARK(BM_StagedQueries);

static void BM_MonolithicQuery(benchmark::State &State) {
  for (auto _ : State) {
    resetContext();
    Expr Q = mkTrue();
    for (unsigned I = 0; I < 6; ++I)
      Q = mkAnd(Q, hardConjunct(16, I));
    benchmark::DoNotOptimize(checkSat(Q).isSat());
  }
}
BENCHMARK(BM_MonolithicQuery);

/// Profiling overhead on the disabled path. Every instrumented phase pays
/// one prof::Span per entry, so the disabled cost (one relaxed atomic load
/// in the constructor, one branch in the destructor) is the price the whole
/// pipeline pays when --profile is off. The acceptance bar is <= 3% on
/// solver-bound work; compare BM_BitblastSolveAddProfiled against
/// BM_BitblastSolveAdd at the same width for the enabled-path cost.
static void BM_ProfileSpanDisabled(benchmark::State &State) {
  prof::stop();
  for (auto _ : State) {
    prof::Span S("bench_disabled");
    benchmark::DoNotOptimize(S.id());
  }
}
BENCHMARK(BM_ProfileSpanDisabled);

static void BM_ProfileSpanEnabled(benchmark::State &State) {
  prof::start();
  for (auto _ : State) {
    prof::Span S("bench_enabled");
    benchmark::DoNotOptimize(S.id());
    // Keep the record buffer from growing unboundedly over iterations.
    if (State.iterations() % 4096 == 0)
      prof::clear();
  }
  prof::stop();
  prof::clear();
}
BENCHMARK(BM_ProfileSpanEnabled);

static void BM_BitblastSolveAddProfiled(benchmark::State &State) {
  unsigned W = 32;
  prof::start();
  for (auto _ : State) {
    resetContext();
    prof::clear();
    Expr X = mkVar("x", W), Y = mkVar("y", W), Z = mkVar("z", W);
    Expr Q = mkNe(mkAdd(mkAdd(X, Y), Z), mkAdd(X, mkAdd(Y, Z)));
    SolveOutcome R = checkSat(Q);
    if (!R.isUnsat())
      State.SkipWithError("expected unsat");
  }
  prof::stop();
  prof::clear();
}
BENCHMARK(BM_BitblastSolveAddProfiled);

BENCHMARK_MAIN();
