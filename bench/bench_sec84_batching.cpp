//===- bench/bench_sec84_batching.cpp - Section 8.4 batching -------------------==//
//
// Part of the alive2re project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Section 8.4: "We batched optimization passes ... in order to reduce the
/// total verification time. Batching, however, incurs a slight risk of
/// hiding bugs, as an optimization may accidentally fix the miscompilation
/// of a previous optimization." This harness measures both effects: the
/// per-pass vs batched validation time over an application, and a
/// mask-the-bug demonstration where a later pass folds the broken code
/// away so the batched check misses what per-pass validation catches.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "opt/Pass.h"

#include <thread>

using namespace alive;
using namespace alive::bench;

int main() {
  std::printf("# Section 8.4: per-pass vs batched validation\n\n");

  // Timing comparison on one synthetic app.
  corpus::AppSpec Spec = corpus::appSpecs()[1]; // gzip
  for (bool Batch : {false, true}) {
    auto M = corpus::generateApp(Spec);
    refine::Options Opts;
    Opts.UnrollFactor = 8;
    Opts.Budget.TimeoutSec = 10;
    // Solver effort is the measurement; the result cache would serve
    // repeats for free and skew it.
    Opts.Cache = refine::CachePolicy::disabled();
    refine::BatchSummary T;
    unsigned Checks = 0;
    Stopwatch Timer;
    ir::Module *MPtr = M.get();
    refine::Validator Validator(Opts);
    opt::TVHook Hook = [&](const ir::Function &Before,
                           const ir::Function &After, const std::string &) {
      ++Checks;
      smt::resetContext();
      T.countVerdict(Validator.verifyPair(Before, After, MPtr));
    };
    opt::runPipeline(*M, opt::defaultPipeline(), Hook, Batch);
    std::printf("%-10s checks=%-4u valid=%-4u viol=%-3u other=%-3u "
                "time=%.1fs\n",
                Batch ? "batched" : "per-pass", Checks, T.Correct,
                T.Incorrect, T.Pairs - T.Correct - T.Incorrect,
                Timer.seconds());
  }

  // The hiding hazard, exactly as the paper warns: bug-arith's
  // nsw-keeping reassociation ((a+b)+c -> (a+c)+b) is a miscompilation,
  // but applying it twice is the identity — the second buggy run
  // "accidentally fixes" the first, so batched validation sees nothing.
  const char *Src = R"(
define i8 @h(i8 %a, i8 %b, i8 %c) {
entry:
  %x = add nsw i8 %a, %b
  %y = add nsw i8 %x, %c
  ret i8 %y
}
)";
  std::printf("\nbug-hiding demonstration (bug-arith applied twice):\n");
  for (bool Batch : {false, true}) {
    auto M = ir::parseModuleOrDie(Src);
    refine::Options Opts;
    Opts.Budget.TimeoutSec = 15;
    Opts.Cache = refine::CachePolicy::disabled();
    unsigned Violations = 0;
    ir::Module *MPtr = M.get();
    refine::Validator Validator(Opts);
    opt::TVHook Hook = [&](const ir::Function &Before,
                           const ir::Function &After, const std::string &P) {
      smt::resetContext();
      refine::Verdict V = Validator.verifyPair(Before, After, MPtr);
      if (V.isIncorrect()) {
        ++Violations;
        std::printf("  caught after '%s'\n", P.c_str());
      }
    };
    opt::runPipeline(*M, {"bug-arith", "bug-arith"}, Hook, Batch);
    std::printf("%-10s violations found: %u %s\n",
                Batch ? "batched" : "per-pass", Violations,
                Batch && Violations == 0
                    ? "(the second buggy pass masked the first)"
                    : "");
  }

  // Parallel batch verification: collect every per-pass (before, after)
  // pair up front, then replay the same batch through the Validator at
  // increasing job counts. Verdict tallies must agree across job counts
  // (the expression context is per-thread and reset per pair, so results
  // are scheduling-independent); wall time is what parallelism buys.
  std::printf("\nparallel batch verification (-j sweep):\n");
  {
    auto M = corpus::generateApp(corpus::appSpecs()[1]); // gzip
    refine::Options Opts;
    Opts.UnrollFactor = 8;
    Opts.Budget.TimeoutSec = 10;
    // The sweep replays the same batch through one Validator at rising job
    // counts: with the pair cache on, -j 2/4 would be answered wholesale
    // from -j 1's run and the speedup would be fiction.
    Opts.Cache = refine::CachePolicy::disabled();
    std::vector<std::unique_ptr<ir::Function>> Keep;
    std::vector<refine::Validator::PairTask> Tasks;
    ir::Module *MPtr = M.get();
    opt::TVHook Collect = [&](const ir::Function &Before,
                              const ir::Function &After,
                              const std::string &Pass) {
      Keep.push_back(Before.clone());
      const ir::Function *B = Keep.back().get();
      Keep.push_back(After.clone());
      const ir::Function *A = Keep.back().get();
      Tasks.push_back({B, A, MPtr, Before.name() + " (" + Pass + ")"});
    };
    opt::runPipeline(*M, opt::defaultPipeline(), Collect, /*Batch=*/false);
    std::printf("  %zu pairs collected; hardware threads: %u\n",
                Tasks.size(), std::thread::hardware_concurrency());

    refine::Validator Validator(Opts);
    refine::BatchSummary Base;
    double BaseSec = 0;
    for (unsigned Jobs : {1u, 2u, 4u}) {
      Stopwatch Timer;
      auto Results = Validator.verifyBatch(Tasks, Jobs);
      double Wall = Timer.seconds();
      refine::BatchSummary S = refine::summarize(Results);
      if (Jobs == 1) {
        Base = S;
        BaseSec = Wall;
      }
      bool Parity = S.Correct == Base.Correct &&
                    S.Incorrect == Base.Incorrect &&
                    S.Timeout == Base.Timeout && S.Other == Base.Other &&
                    S.QueriesRun == Base.QueriesRun;
      std::printf("  -j %u   wall=%.2fs  speedup=%.2fx  valid=%u viol=%u "
                  "queries=%u%s\n",
                  Jobs, Wall, Wall > 0 ? BaseSec / Wall : 0.0, S.Correct,
                  S.Incorrect, S.QueriesRun,
                  Parity ? "" : "  ** VERDICT MISMATCH vs -j 1 **");
    }
  }
  return 0;
}
